package workload

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestZipfGoldenHistogram pins the sampler's exact seeded output: the
// top-10 rank frequencies of 50k draws from Zipf(1000, 0.9) under two
// seeds. Any change to the rejection-inversion arithmetic, the RNG
// consumption pattern, or float evaluation order shows up here before it
// silently shifts every seeded figure.
func TestZipfGoldenHistogram(t *testing.T) {
	golden := map[uint64][]int{
		1:  {4671, 2581, 1829, 1354, 1101, 1014, 876, 707, 640, 561},
		42: {4874, 2486, 1694, 1287, 1072, 954, 815, 736, 671, 594},
	}
	for seed, want := range golden {
		z := NewZipf(1000, 0.9)
		rng := sim.NewRNG(seed)
		counts := make([]int, 1000)
		for i := 0; i < 50000; i++ {
			counts[z.Next(rng)]++
		}
		for r, w := range want {
			if counts[r] != w {
				t.Errorf("seed %d: rank %d count = %d, want %d", seed, r, counts[r], w)
			}
		}
	}
}

// TestZipfThetaZeroIsUniform checks the degenerate no-skew case: at
// theta = 0 every rank is equally likely (the acceptance test always
// passes, so this is pure inversion over a uniform density).
func TestZipfThetaZeroIsUniform(t *testing.T) {
	const n, draws = 16, 160000
	z := NewZipf(n, 0)
	rng := sim.NewRNG(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	// Expected 10000 per rank; 5 sigma ≈ 485.
	for r, c := range counts {
		if c < 9500 || c > 10500 {
			t.Errorf("rank %d: count %d outside uniform band [9500, 10500]", r, c)
		}
	}
}

// TestZipfSkewShape checks the law itself on a moderate range: the
// empirical rank-0 mass must track 1/H_n(theta) and frequencies must
// decay monotonically over the first ranks.
func TestZipfSkewShape(t *testing.T) {
	const n, draws = 1000, 50000
	for _, tc := range []struct {
		theta float64
		p0    float64 // analytic P(rank 0) = 1 / sum 1/k^theta
	}{
		{0.9, 0.0949},
		{1.0, 0.1336},
	} {
		z := NewZipf(n, tc.theta)
		rng := sim.NewRNG(3)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next(rng)]++
		}
		got := float64(counts[0]) / draws
		if got < tc.p0*0.93 || got > tc.p0*1.07 {
			t.Errorf("theta %.1f: P(0) = %.4f, want about %.4f", tc.theta, got, tc.p0)
		}
		for r := 1; r < 8; r++ {
			if counts[r] > counts[r-1] {
				t.Errorf("theta %.1f: counts not decreasing at rank %d (%d > %d)",
					tc.theta, r, counts[r], counts[r-1])
			}
		}
	}
}

// TestZipfDeterministicAndHugeRange checks bit-identical streams under
// one seed and that the sampler stays in range over a 2^35-row domain
// (the N=256 cluster's global key space) without O(n) setup.
func TestZipfDeterministicAndHugeRange(t *testing.T) {
	const n = int64(1) << 35
	a, b := NewZipf(n, 1.1), NewZipf(n, 1.1)
	ra, rb := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 20000; i++ {
		x, y := a.Next(ra), b.Next(rb)
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
		if x < 0 || x >= n {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

// TestYCSBZipfianMode checks the generator integration: keys stay inside
// their partitions, distributed transactions place ops by global rank
// (hot ranks round-robin across nodes), and ByNameTheta round-trips.
func TestYCSBZipfianMode(t *testing.T) {
	gen, err := ByNameTheta("ycsb-a", 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	y := gen.(*YCSB)
	if got := y.Name(); got != "YCSB-A-zipf0.90" {
		t.Errorf("Name() = %q", got)
	}
	rng := sim.NewRNG(11)
	cfg := y.Config()
	sawRemote := false
	for i := 0; i < 2000; i++ {
		self := netsim.NodeID(rng.Intn(cfg.NumNodes))
		txn := y.Next(rng, self)
		if len(txn.Ops) != cfg.OpsPerTxn {
			t.Fatalf("txn %d: %d ops", i, len(txn.Ops))
		}
		for _, op := range txn.Ops {
			if home := y.Home(op.Table, op.Key); home != op.Home {
				t.Fatalf("txn %d: op key %d homed at %d, declared %d", i, op.Key, home, op.Home)
			}
			if op.Home != self {
				sawRemote = true
			}
		}
	}
	if !sawRemote {
		t.Error("no distributed transactions generated at DistPct > 0")
	}
	if _, err := ByNameTheta("tpcc", 4, 0.9); err == nil {
		t.Error("tpcc accepted a theta it cannot honor")
	}
	if _, err := ByNameTheta("ycsb-a", 4, -1); err == nil {
		t.Error("negative theta accepted")
	}
}
